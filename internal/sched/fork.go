package sched

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/fptime"
	"repro/internal/linksched"
	"repro/internal/network"
)

// This file implements parallel earliest-finish-time processor
// selection over forked scheduler states. The sequential BA probe loop
// tentatively places a ready task on every processor — each probe
// doing route search plus per-link timeline insertion — and rolls
// back; with |P| processors that is |P| full placements per task, the
// dominant cost of EFT scheduling under the edge-scheduling model.
//
// The parallel engine keeps ProbeWorkers replicas of the scheduler
// state. Every replica applies the same committed placements in the
// same order, so all replicas are bit-identical at the start of each
// selection; the processor candidates are then partitioned among the
// replicas and probed concurrently, each replica using its own
// transaction journal exactly like the sequential path. Because a
// probe's result depends only on the (identical) state, the gathered
// finish times are independent of which replica evaluated them, and a
// deterministic fold — lowest finish time beyond the fptime tolerance,
// ties to the lowest processor ID — makes the chosen processor, and
// therefore the whole schedule, bit-identical at any worker count.

// probeStats counts EFT probe work. The counters are shared by all
// forks of a state and are updated atomically.
type probeStats struct {
	probes atomic.Int64 // tentative placements evaluated
	pruned atomic.Int64 // candidates skipped by the finish lower bound
}

// eftScratch holds the per-selection buffers of selectByEFT so the
// probe loop allocates nothing after the first task.
type eftScratch struct {
	lb     []float64
	finish []float64
	errs   []error
	skip   []bool
	cands  []int
}

func (e *eftScratch) resize(n int) {
	if cap(e.lb) < n {
		e.lb = make([]float64, n)
		e.finish = make([]float64, n)
		e.errs = make([]error, n)
		e.skip = make([]bool, n)
	}
	e.lb = e.lb[:n]
	e.finish = e.finish[:n]
	e.errs = e.errs[:n]
	e.skip = e.skip[:n]
	e.cands = e.cands[:0]
}

// probeWorkers resolves the configured worker count: 0 means
// GOMAXPROCS, anything below 1 is clamped to 1 (sequential).
func probeWorkers(opts Options) int {
	w := opts.ProbeWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Clone returns a deep copy of the scheduling state: an independent
// replica whose timelines, placement records and processor clocks can
// be mutated without affecting the original. The immutable inputs
// (graph, topology, options) are shared, as are the concurrency-safe
// route cache and probe counters. Cloning inside a transaction is a
// bug and panics.
func (s *state) Clone() *state {
	if s.tx != nil {
		panic("sched: Clone inside a transaction")
	}
	c := new(state)
	s.cloneInto(c)
	return c
}

// cloneInto overwrites c with a deep copy of s. With the columnar
// layout this is a flat column copy per field — copyColumn for the
// placement columns, edgeStore.copyFrom for the edge arenas, and the
// linksched bulk-copy paths for the timeline slabs — reusing every
// backing buffer c already owns, so re-cloning a pooled replica of the
// same topology allocates nothing in steady state.
//
// Three groups of fields deliberately do NOT copy over:
//   - router scratch is rebuilt only when c's router was built against
//     a different topology or route cache (the arrays are sized to the
//     topology and carry no cross-clone state);
//   - the cached relaxFn/slackFn closures reset to nil — a copied
//     closure would still capture the ORIGINAL state — so each replica
//     lazily rebuilds its own;
//   - transaction state resets (tx nil, txSeq 0) and the reusable
//     journals are re-sized to the new entity counts, which keeps the
//     size-drift check in begin honest for pooled replicas.
func (s *state) cloneInto(c *state) {
	if c.router == nil || c.routerNet != s.net || c.routeCache != s.routeCache {
		c.router = s.net.NewRouter(s.routeCache)
		c.routerNet = s.net
	}
	c.g = s.g
	c.net = s.net
	c.opts = s.opts
	c.mls = s.mls
	c.routeCache = s.routeCache
	c.stats = s.stats
	c.procFinish = copyColumn(c.procFinish, s.procFinish)
	c.tasks = copyColumn(c.tasks, s.tasks)
	c.dups = copyColumn(c.dups, s.dups)
	c.edges.copyFrom(&s.edges)
	c.tl = linksched.CopyTimelines(c.tl, s.tl)
	c.bw = linksched.CopyBWTimelines(c.bw, s.bw)
	c.ptl = linksched.CopyTimelines(c.ptl, s.ptl)
	c.tx = nil
	c.txSeq = 0
	if c.txFree != nil {
		c.txFree.taskOld.resize(len(s.tasks))
		c.txFree.procOld.resize(len(s.procFinish))
		c.txFree.edgeOld.resize(len(s.edges.meta))
		c.txFree.tlSnaps.resize(len(s.tl))
		c.txFree.bwSnaps.resize(len(s.bw))
		c.txFree.ptlSnaps.resize(len(s.ptl))
	}
	c.forks = c.forks[:0]
	c.forkErrs = c.forkErrs[:0]
	c.relaxEdgeCost = 0
	c.relaxFn = nil
	c.slackFn = nil
}

// statePool recycles fork replicas across Schedule runs: a replica's
// columns, arenas, timeline slabs, journals and router scratch all
// retain their capacity in the pool, so the next fork of a same-shaped
// problem is pure copy() work. Only fork replicas are pooled — the
// primary state's tasks/dups slices escape into the returned Schedule.
var statePool = sync.Pool{New: func() any { return new(state) }}

// fork creates the worker replicas for parallel EFT probing. Called
// once per Schedule run, before any task is placed; releaseForks
// returns the replicas to the pool when the run ends.
func (s *state) fork(workers int) {
	if workers <= 1 {
		return
	}
	if cap(s.forks) < workers-1 {
		s.forks = make([]*state, workers-1)
	}
	s.forks = s.forks[:workers-1]
	for i := range s.forks {
		f := statePool.Get().(*state)
		s.cloneInto(f)
		s.forks[i] = f
	}
}

// releaseForks hands the fork replicas back to the pool. The replicas
// hold no references into the returned Schedule (their columns are
// private copies), so recycling them is safe the moment the run ends.
func (s *state) releaseForks() {
	for i, f := range s.forks {
		s.forks[i] = nil
		statePool.Put(f)
	}
	s.forks = s.forks[:0]
}

// placeAndCommit places tid on proc in this state and every fork.
// Replicas run concurrently; their placements are deterministic
// functions of bit-identical states, so all replicas stay identical.
func (s *state) placeAndCommit(tid dag.TaskID, proc network.NodeID) (float64, error) {
	if len(s.forks) == 0 {
		return s.placeTask(tid, proc)
	}
	var wg sync.WaitGroup
	if cap(s.forkErrs) < len(s.forks) {
		s.forkErrs = make([]error, len(s.forks))
	}
	errs := s.forkErrs[:len(s.forks)]
	for i, f := range s.forks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = f.placeTask(tid, proc)
		}()
	}
	finish, err := s.placeTask(tid, proc)
	wg.Wait()
	for _, e := range errs {
		if err == nil && e != nil {
			err = e
		}
	}
	return finish, err
}

// probe tentatively places tid on proc inside a transaction and
// returns the finish time it would achieve; the state is rolled back
// either way. The rollback is deferred so that a panic mid-placement
// still restores the state and closes the transaction — otherwise a
// recovered panic would leave s.tx set and poison the replica for
// every later probe.
func (s *state) probe(tid dag.TaskID, proc network.NodeID) (finish float64, err error) {
	s.begin()
	defer s.rollback()
	finish, err = s.placeTask(tid, proc)
	return finish, err
}

// probeLowerBound returns a provable lower bound on the finish time a
// tentative placement of tid on p can achieve: the task cannot start
// before its ready time, nor — under append placement, where the
// processor clock only grows — before the processor's current finish,
// and it must run for its full duration on p.
func (s *state) probeLowerBound(tid dag.TaskID, p network.NodeID, ready float64) float64 {
	start := ready
	if s.opts.TaskPolicy == TaskAppend {
		if f := s.procFinish[p]; f > start {
			start = f
		}
	}
	return start + s.g.Task(tid).Cost/s.net.Node(p).Speed
}

// probeError wraps a failed tentative placement with the processor it
// failed on, so a sweep failure names the culprit instead of the bare
// routing error.
func (s *state) probeError(tid dag.TaskID, p network.NodeID, err error) error {
	return fmt.Errorf("sched: EFT probe of task %d on processor %s (node %d): %w",
		tid, s.net.Node(p).Name, p, err)
}

// selectByEFT tentatively schedules the task on every processor and
// keeps the earliest finish (BA's policy). Three refinements over the
// plain probe loop, none of which changes the selected processor:
//
//   - A pilot probe: the processor with the smallest finish lower
//     bound is probed first and its achieved finish becomes the
//     pruning bound.
//   - Safe pruning: processors whose lower bound exceeds the pilot's
//     finish by more than the fptime tolerance cannot win the fold and
//     are skipped. The bound is deliberately NOT tightened with later
//     probe results: a fixed bound makes the probed set — and the
//     schedule — identical at every ProbeWorkers setting.
//   - Parallel probing: surviving candidates are partitioned over the
//     forked replicas and probed concurrently.
//
// The final fold scans processors in ID order keeping the earliest
// finish beyond the fptime tolerance, so ties break to the lowest
// processor ID exactly as in the sequential loop. This is the
// canonical conforming deterministic fold the detfold analyzer checks
// other merges against.
//
// edgelint:detfold
func (s *state) selectByEFT(tid dag.TaskID) (network.NodeID, error) {
	procs := s.net.Processors()
	if len(procs) == 1 {
		// The sole processor is selected by its (trivial) placement:
		// count it as one evaluated placement so probe totals agree
		// between 1-processor and n-processor topologies (|P| minus
		// pruned probes per task either way).
		s.stats.probes.Add(1)
		return procs[0], nil
	}
	ready := s.readyTime(tid)
	s.eft.resize(len(procs))
	lb, finish, errs, skip := s.eft.lb, s.eft.finish, s.eft.errs, s.eft.skip

	pilot := 0
	for i, p := range procs {
		lb[i] = s.probeLowerBound(tid, p, ready)
		// edgelint:ignore floateq, detfold — exact argmin, first-wins
		// ties; any deterministic pilot is valid, its finish only prunes.
		if lb[i] < lb[pilot] {
			pilot = i
		}
	}
	bound, err := s.probe(tid, procs[pilot])
	if err != nil {
		return -1, s.probeError(tid, procs[pilot], err)
	}

	cands := s.eft.cands
	for i := range procs {
		skip[i] = false
		errs[i] = nil
		if i == pilot {
			continue
		}
		if fptime.LessEps(bound, lb[i]) {
			// Even the lower bound loses to the pilot by more than the
			// tolerance: the fold below could never pick this
			// processor, so the probe is pure waste.
			skip[i] = true
			s.stats.pruned.Add(1)
			continue
		}
		cands = append(cands, i)
	}
	s.eft.cands = cands
	s.stats.probes.Add(int64(len(cands)) + 1)

	if len(cands) > 0 {
		workers := 1 + len(s.forks)
		if workers > len(cands) {
			workers = len(cands)
		}
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st := s.forks[w-1]
				for j := w; j < len(cands); j += workers {
					i := cands[j]
					finish[i], errs[i] = st.probe(tid, procs[i])
				}
			}()
		}
		for j := 0; j < len(cands); j += workers {
			i := cands[j]
			finish[i], errs[i] = s.probe(tid, procs[i])
		}
		wg.Wait()
	}

	for i, p := range procs {
		if errs[i] != nil {
			return -1, s.probeError(tid, p, errs[i])
		}
	}
	best := network.NodeID(-1)
	bestFinish := math.Inf(1)
	for i, p := range procs {
		var f float64
		switch {
		case i == pilot:
			f = bound
		case skip[i]:
			continue
		default:
			f = finish[i]
		}
		if fptime.LessEps(f, bestFinish) {
			bestFinish = f
			best = p
		}
	}
	return best, nil
}
