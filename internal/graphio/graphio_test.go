package graphio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
)

func TestGraphRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    40,
		TaskCost: dag.CostDist{Lo: 1, Hi: 100},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 100},
	})
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %v vs %v", g2, g)
	}
	for i, task := range g.Tasks() {
		if g2.Tasks()[i] != task {
			t.Fatalf("task %d changed: %+v vs %+v", i, g2.Tasks()[i], task)
		}
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Fatalf("edge %d changed", i)
		}
	}
}

func TestGraphReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad json":     `{`,
		"unknown keys": `{"tasks":[],"edges":[],"extra":1}`,
		"edge range":   `{"tasks":[{"name":"a","cost":1}],"edges":[{"from":0,"to":5,"cost":1}]}`,
		"self loop":    `{"tasks":[{"name":"a","cost":1}],"edges":[{"from":0,"to":0,"cost":1}]}`,
		"cycle": `{"tasks":[{"name":"a","cost":1},{"name":"b","cost":1}],
			"edges":[{"from":0,"to":1,"cost":1},{"from":1,"to":0,"cost":1}]}`,
		"negative cost": `{"tasks":[{"name":"a","cost":-5}],"edges":[]}`,
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	top := network.RandomCluster(r, network.RandomClusterParams{
		Processors: 12,
		ProcSpeed:  network.UniformRange(r, 1, 10),
		LinkSpeed:  network.UniformRange(r, 1, 10),
	})
	var buf bytes.Buffer
	if err := WriteTopology(&buf, top); err != nil {
		t.Fatal(err)
	}
	top2, err := ReadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if top2.NumNodes() != top.NumNodes() || top2.NumLinks() != top.NumLinks() ||
		top2.NumProcessors() != top.NumProcessors() {
		t.Fatalf("shape changed: %v vs %v", top2, top)
	}
	for i, n := range top.Nodes() {
		n2 := top2.Nodes()[i]
		if n2.Kind != n.Kind || n2.Name != n.Name || n2.Speed != n.Speed {
			t.Fatalf("node %d changed: %+v vs %+v", i, n2, n)
		}
	}
	for i, l := range top.Links() {
		l2 := top2.Links()[i]
		if l2.From != l.From || l2.To != l.To || l2.Speed != l.Speed {
			t.Fatalf("link %d changed", i)
		}
	}
}

func TestTopologyBusRoundTrip(t *testing.T) {
	top := network.Bus(4, network.Uniform(2), 3)
	var buf bytes.Buffer
	if err := WriteTopology(&buf, top); err != nil {
		t.Fatal(err)
	}
	top2, err := ReadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l := top2.Link(0)
	if !l.IsBus() || len(l.Members) != 4 || l.Speed != 3 {
		t.Fatalf("bus lost in round trip: %+v", l)
	}
}

func TestTopologyDuplexShortcut(t *testing.T) {
	in := `{"nodes":[{"name":"a","kind":"processor","speed":1},
		{"name":"b","kind":"processor","speed":1}],
		"links":[{"from":0,"to":1,"duplex":true,"speed":2}]}`
	top, err := ReadTopology(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if top.NumLinks() != 2 {
		t.Fatalf("duplex shortcut produced %d links", top.NumLinks())
	}
}

func TestTopologyReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad json":     `[`,
		"unknown kind": `{"nodes":[{"name":"x","kind":"router"}],"links":[]}`,
		"no speed":     `{"nodes":[{"name":"x","kind":"processor"}],"links":[]}`,
		"link range": `{"nodes":[{"name":"a","kind":"processor","speed":1}],
			"links":[{"from":0,"to":9,"speed":1}]}`,
		"self link": `{"nodes":[{"name":"a","kind":"processor","speed":1}],
			"links":[{"from":0,"to":0,"speed":1}]}`,
		"zero speed link": `{"nodes":[{"name":"a","kind":"processor","speed":1},
			{"name":"b","kind":"processor","speed":1}],
			"links":[{"from":0,"to":1,"speed":0}]}`,
		"single member bus": `{"nodes":[{"name":"a","kind":"processor","speed":1},
			{"name":"b","kind":"processor","speed":1}],
			"links":[{"members":[0],"speed":1}]}`,
		"disconnected": `{"nodes":[{"name":"a","kind":"processor","speed":1},
			{"name":"b","kind":"processor","speed":1}],"links":[]}`,
	}
	for name, in := range cases {
		if _, err := ReadTopology(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
