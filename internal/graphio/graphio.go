// Package graphio serializes task graphs and network topologies to a
// stable JSON format, so instances can be generated once, stored,
// edited by hand, and scheduled repeatedly across runs and tools.
package graphio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dag"
	"repro/internal/network"
)

// graphDoc is the JSON shape of a task graph.
type graphDoc struct {
	Tasks []taskDoc `json:"tasks"`
	Edges []edgeDoc `json:"edges"`
}

type taskDoc struct {
	Name string  `json:"name"`
	Cost float64 `json:"cost"`
}

type edgeDoc struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Cost float64 `json:"cost"`
}

// WriteGraph serializes a task graph as indented JSON. Task IDs are
// implicit: position in the tasks array.
func WriteGraph(w io.Writer, g *dag.Graph) error {
	doc := graphDoc{}
	for _, t := range g.Tasks() {
		doc.Tasks = append(doc.Tasks, taskDoc{Name: t.Name, Cost: t.Cost})
	}
	for _, e := range g.Edges() {
		doc.Edges = append(doc.Edges, edgeDoc{From: int(e.From), To: int(e.To), Cost: e.Cost})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadGraph parses a task graph from JSON and validates it.
func ReadGraph(r io.Reader) (*dag.Graph, error) {
	var doc graphDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	g := dag.New()
	for _, t := range doc.Tasks {
		g.AddTask(t.Name, t.Cost)
	}
	n := len(doc.Tasks)
	for i, e := range doc.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graphio: edge %d references task outside [0,%d)", i, n)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("graphio: edge %d is a self-loop on task %d", i, e.From)
		}
		g.AddEdge(dag.TaskID(e.From), dag.TaskID(e.To), e.Cost)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// topologyDoc is the JSON shape of a network topology.
type topologyDoc struct {
	Nodes []nodeDoc `json:"nodes"`
	Links []linkDoc `json:"links"`
}

type nodeDoc struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "processor" or "switch"
	// Speed is required for processors, ignored for switches.
	Speed float64 `json:"speed,omitempty"`
}

type linkDoc struct {
	// Point-to-point links use From/To (node indices); Duplex makes
	// the reader add both directions.
	From   int  `json:"from,omitempty"`
	To     int  `json:"to,omitempty"`
	Duplex bool `json:"duplex,omitempty"`
	// Members, when non-empty, declares a hyperedge (bus) instead.
	Members []int   `json:"members,omitempty"`
	Speed   float64 `json:"speed"`
}

// WriteTopology serializes a topology as indented JSON. Duplex pairs
// are not re-merged: every directed link appears individually, so the
// round trip is exact.
func WriteTopology(w io.Writer, t *network.Topology) error {
	doc := topologyDoc{}
	for _, n := range t.Nodes() {
		nd := nodeDoc{Name: n.Name, Kind: n.Kind.String()}
		if n.Kind == network.Processor {
			nd.Speed = n.Speed
		}
		doc.Nodes = append(doc.Nodes, nd)
	}
	for _, l := range t.Links() {
		if l.IsBus() {
			ld := linkDoc{Speed: l.Speed}
			for _, m := range l.Members {
				ld.Members = append(ld.Members, int(m))
			}
			doc.Links = append(doc.Links, ld)
			continue
		}
		doc.Links = append(doc.Links, linkDoc{From: int(l.From), To: int(l.To), Speed: l.Speed})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadTopology parses a topology from JSON and validates it.
func ReadTopology(r io.Reader) (*network.Topology, error) {
	var doc topologyDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	t := network.NewTopology()
	for i, n := range doc.Nodes {
		switch n.Kind {
		case "processor":
			if n.Speed <= 0 {
				return nil, fmt.Errorf("graphio: processor node %d needs a positive speed", i)
			}
			t.AddProcessor(n.Name, n.Speed)
		case "switch":
			t.AddSwitch(n.Name)
		default:
			return nil, fmt.Errorf("graphio: node %d has unknown kind %q", i, n.Kind)
		}
	}
	nn := len(doc.Nodes)
	check := func(i, v int) error {
		if v < 0 || v >= nn {
			return fmt.Errorf("graphio: link %d references node %d outside [0,%d)", i, v, nn)
		}
		return nil
	}
	for i, l := range doc.Links {
		if l.Speed <= 0 {
			return nil, fmt.Errorf("graphio: link %d needs a positive speed", i)
		}
		if len(l.Members) > 0 {
			members := make([]network.NodeID, 0, len(l.Members))
			for _, m := range l.Members {
				if err := check(i, m); err != nil {
					return nil, err
				}
				members = append(members, network.NodeID(m))
			}
			if len(members) < 2 {
				return nil, fmt.Errorf("graphio: bus link %d needs at least two members", i)
			}
			t.AddBus(members, l.Speed)
			continue
		}
		if err := check(i, l.From); err != nil {
			return nil, err
		}
		if err := check(i, l.To); err != nil {
			return nil, err
		}
		if l.From == l.To {
			return nil, fmt.Errorf("graphio: link %d is a self-link on node %d", i, l.From)
		}
		if l.Duplex {
			t.AddDuplex(network.NodeID(l.From), network.NodeID(l.To), l.Speed)
		} else {
			t.AddLink(network.NodeID(l.From), network.NodeID(l.To), l.Speed)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return t, nil
}
