package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph checks the graph parser never panics and that every
// accepted graph round-trips and validates.
func FuzzReadGraph(f *testing.F) {
	f.Add(`{"tasks":[{"name":"a","cost":1},{"name":"b","cost":2}],"edges":[{"from":0,"to":1,"cost":3}]}`)
	f.Add(`{"tasks":[],"edges":[]}`)
	f.Add(`{"tasks":[{"name":"x","cost":0}],"edges":[]}`)
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			t.Fatalf("cannot re-serialize accepted graph: %v", err)
		}
		g2, err := ReadGraph(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}

// FuzzReadTopology checks the topology parser never panics and that
// every accepted topology validates and round-trips.
func FuzzReadTopology(f *testing.F) {
	f.Add(`{"nodes":[{"name":"a","kind":"processor","speed":1},
		{"name":"b","kind":"processor","speed":2}],
		"links":[{"from":0,"to":1,"duplex":true,"speed":1}]}`)
	f.Add(`{"nodes":[{"name":"a","kind":"processor","speed":1},
		{"name":"b","kind":"processor","speed":1},
		{"name":"c","kind":"processor","speed":1}],
		"links":[{"members":[0,1,2],"speed":2}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		top, err := ReadTopology(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := top.Validate(); err != nil {
			t.Fatalf("accepted topology fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteTopology(&buf, top); err != nil {
			t.Fatalf("cannot re-serialize accepted topology: %v", err)
		}
		top2, err := ReadTopology(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if top2.NumNodes() != top.NumNodes() || top2.NumLinks() != top.NumLinks() {
			t.Fatal("round trip changed the topology")
		}
	})
}
