#!/usr/bin/env bash
# load_smoke.sh — end-to-end serving smoke: start edgeschedd on a small
# built-in topology, drive it with edgeload for a few seconds, and
# require zero errors and non-zero throughput. edgeload exits non-zero
# on either, and the daemon must drain cleanly on SIGTERM, so this
# script's exit code is the gate.
#
# Usage: scripts/load_smoke.sh [duration] [clients]
set -euo pipefail

cd "$(dirname "$0")/.."
DURATION="${1:-5s}"
CLIENTS="${2:-4}"
TMP="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/edgeschedd" ./cmd/edgeschedd
go build -o "$TMP/edgeload" ./cmd/edgeload

"$TMP/edgeschedd" -topology star:8 -algo OIHSA \
    -addr 127.0.0.1:0 -addr-file "$TMP/addr" -self-check-every 50 &
DAEMON_PID=$!

# The address file appears once the daemon is listening.
for _ in $(seq 1 100); do
    [ -s "$TMP/addr" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "load-smoke: daemon died at startup" >&2; exit 1; }
    sleep 0.1
done
[ -s "$TMP/addr" ] || { echo "load-smoke: daemon never wrote its address" >&2; exit 1; }

"$TMP/edgeload" -url "http://$(cat "$TMP/addr")" \
    -clients "$CLIENTS" -duration "$DURATION" -tasks 20 -out "$TMP/LOAD.json"

# Graceful drain: SIGTERM must lead to a clean exit 0.
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
    echo "load-smoke: daemon did not drain cleanly" >&2
    exit 1
fi
echo "load-smoke: OK"
