GO ?= go

.PHONY: build vet test race lint lint-self check bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiment ./internal/sched ./internal/network ./internal/linksched

lint:
	$(GO) run ./cmd/edgelint ./...

# lint-self runs the analyzers over their own implementation and the
# driver, so the lint framework holds itself to the repo invariants.
lint-self:
	$(GO) run ./cmd/edgelint ./internal/lint/... ./cmd/edgelint

# bench runs the full suite 5 times, writes the next BENCH_<n>.json
# snapshot, and prints the delta against the previous one (~15 min).
bench:
	$(GO) run ./cmd/benchdiff -run

# bench-smoke compiles and runs every benchmark exactly once — a fast
# CI guard that the benchmark suite itself stays green.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

# check mirrors the CI pipeline (.github/workflows/ci.yml).
check: build vet test race lint lint-self
