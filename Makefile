GO ?= go

.PHONY: build vet test race lint check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/experiment ./internal/sched

lint:
	$(GO) run ./cmd/edgelint ./...

# check mirrors the CI pipeline (.github/workflows/ci.yml).
check: build vet test race lint
