GO ?= go

.PHONY: build vet test race lint lint-self check bench bench-smoke bench-check load-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

lint:
	$(GO) run ./cmd/edgelint ./...

# lint-self runs the analyzers over their own implementation and the
# driver, so the lint framework holds itself to the repo invariants.
lint-self:
	$(GO) run ./cmd/edgelint ./internal/lint/... ./cmd/edgelint

# bench runs the full suite 5 times, writes the next BENCH_<n>.json
# snapshot, and prints the delta against the previous one (~15 min).
bench:
	$(GO) run ./cmd/benchdiff -run

# bench-smoke compiles and runs every benchmark exactly once — a fast
# CI guard that the benchmark suite itself stays green.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem .

# bench-check re-runs the gated macro benchmarks (a few seconds each)
# and fails on any regression beyond the noise threshold versus the
# latest committed BENCH_<n>.json — the non-flaky smoke gate.
bench-check:
	$(GO) run ./cmd/benchdiff -check -count 3 -benchtime 5x

# load-smoke starts edgeschedd on a small topology, drives it with
# edgeload for a few seconds, and fails on any request error, zero
# throughput, or an unclean drain.
load-smoke:
	./scripts/load_smoke.sh

# check mirrors the CI pipeline (.github/workflows/ci.yml).
check: build vet test race lint lint-self bench-check load-smoke
