// Benchmarks regenerating the paper's evaluation. One benchmark per
// figure (reduced-scale sweeps whose improvement percentages are
// reported as custom metrics) plus one per ablation and micro
// benchmarks of the substrates. Full paper-scale tables are produced
// by cmd/edgesim (-full); see EXPERIMENTS.md.
package edgesched

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/experiment"
	"repro/internal/linksched"
	"repro/internal/network"
	"repro/internal/sched"
	"repro/internal/workload"
)

// benchConfig is the reduced sweep used by the figure benchmarks:
// small enough to iterate, large enough that the paper's trends are
// visible in the reported metrics.
func benchConfig() experiment.Config {
	return experiment.Config{
		Reps:     1,
		Seed:     2006,
		MinTasks: 150,
		MaxTasks: 250,
		Procs:    []int{8, 32},
		CCRs:     []float64{0.5, 2, 8},
	}
}

func benchFigure(b *testing.B, n int) {
	b.Helper()
	var last *experiment.Sweep
	for i := 0; i < b.N; i++ {
		sw, err := experiment.Figure(n, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = sw
	}
	// Report the mean improvement over all points as custom metrics so
	// the bench run doubles as a figure regeneration check.
	for _, name := range last.Algorithms[1:] {
		sum := 0.0
		for _, pt := range last.Points {
			sum += pt.Improvement[name].Mean
		}
		b.ReportMetric(sum/float64(len(last.Points)), name+"_improv_%")
	}
}

// BenchmarkFigure1 regenerates Figure 1 (homogeneous, improvement vs
// CCR) at reduced scale.
func BenchmarkFigure1(b *testing.B) { benchFigure(b, 1) }

// BenchmarkFigure2 regenerates Figure 2 (homogeneous, improvement vs
// machine size) at reduced scale.
func BenchmarkFigure2(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFigure3 regenerates Figure 3 (heterogeneous, improvement vs
// CCR) at reduced scale.
func BenchmarkFigure3(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFigure4 regenerates Figure 4 (heterogeneous, improvement vs
// machine size) at reduced scale.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4) }

func benchAblation(b *testing.B, key string) {
	b.Helper()
	cfg := benchConfig()
	cfg.Procs = []int{16}
	cfg.CCRs = []float64{2}
	var last *experiment.AblationResult
	for i := 0; i < b.N; i++ {
		res, err := experiment.Ablation(key, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, name := range last.Algorithms[1:] {
		b.ReportMetric(last.Improvement[name].Mean, "improv_%_"+name)
	}
}

// BenchmarkAblationRouting compares BFS vs modified Dijkstra (A1).
func BenchmarkAblationRouting(b *testing.B) { benchAblation(b, "routing") }

// BenchmarkAblationInsertion compares basic vs optimal insertion (A2).
func BenchmarkAblationInsertion(b *testing.B) { benchAblation(b, "insertion") }

// BenchmarkAblationEdgeOrder compares edge scheduling orders (A3).
func BenchmarkAblationEdgeOrder(b *testing.B) { benchAblation(b, "edgeorder") }

// BenchmarkAblationClassic compares replayed classic schedules (A4).
func BenchmarkAblationClassic(b *testing.B) { benchAblation(b, "classic") }

// BenchmarkAblationProcChoice compares processor selections (A5).
func BenchmarkAblationProcChoice(b *testing.B) { benchAblation(b, "procchoice") }

// BenchmarkAblationCommStart compares at-ready vs eager starts (A6).
func BenchmarkAblationCommStart(b *testing.B) { benchAblation(b, "commstart") }

// --- single-instance scheduling benchmarks -------------------------

func benchInstance() workload.Instance {
	return workload.Generate(workload.Params{
		Processors: 32, CCR: 2, MinTasks: 300, MaxTasks: 300, Seed: 42,
	})
}

func benchAlgorithm(b *testing.B, a sched.Algorithm) {
	b.Helper()
	inst := benchInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := a.Schedule(inst.Graph, inst.Net)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan <= 0 {
			b.Fatal("empty makespan")
		}
	}
}

// BenchmarkScheduleBA times BA on one 300-task, 32-processor instance.
func BenchmarkScheduleBA(b *testing.B) { benchAlgorithm(b, sched.NewBA()) }

// BenchmarkScheduleBASinnen times the strong EFT baseline with
// sequential processor probes (pinned so the series stays comparable
// across snapshots regardless of the runner's core count).
func BenchmarkScheduleBASinnen(b *testing.B) {
	a := sched.NewBASinnen()
	a.Opts.ProbeWorkers = 1
	benchAlgorithm(b, a)
}

// BenchmarkScheduleBASinnenLarge times the strong EFT baseline
// (sequential probes) on a 1000-task instance, where the per-link
// timelines grow long enough that the earliest-gap search dominates.
func BenchmarkScheduleBASinnenLarge(b *testing.B) {
	inst := workload.Generate(workload.Params{
		Processors: 32, CCR: 2, MinTasks: 1000, MaxTasks: 1000, Seed: 42,
	})
	a := sched.NewBASinnen()
	a.Opts.ProbeWorkers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := a.Schedule(inst.Graph, inst.Net)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan <= 0 {
			b.Fatal("empty makespan")
		}
	}
}

// BenchmarkScheduleBASinnenParallel times the same EFT baseline with
// the processor probes fanned out over GOMAXPROCS forked states. The
// schedule is bit-identical to the sequential run; only wall-clock per
// Schedule call should change (on multi-core machines).
func BenchmarkScheduleBASinnenParallel(b *testing.B) {
	a := sched.NewBASinnen()
	a.Opts.ProbeWorkers = 0 // GOMAXPROCS
	benchAlgorithm(b, a)
}

// BenchmarkScheduleBASinnenManyProcs times the EFT baseline on a
// 10^4-processor star with U(1,500) heterogeneous speeds, fast links
// and a small DAG: the per-task lower-bound sweep over all 10^4
// processors, the forked replica clones of the 2*10^4-link timeline
// columns, and the probes of the surviving top-speed candidates
// dominate instead of long timelines. Parallel probes are pinned to 8
// workers so the fork and pool costs are exercised identically on
// every runner.
func BenchmarkScheduleBASinnenManyProcs(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	net := network.Star(10000, network.UniformRange(r, 1, 500), network.Uniform(10000))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    48,
		TaskCost: dag.CostDist{Lo: 500, Hi: 1000},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 10},
	})
	a := sched.NewBASinnen()
	a.Opts.ProbeWorkers = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := a.Schedule(g, net)
		if err != nil {
			b.Fatal(err)
		}
		if s.Makespan <= 0 {
			b.Fatal("empty makespan")
		}
	}
}

// BenchmarkScheduleOIHSA times OIHSA on the same instance.
func BenchmarkScheduleOIHSA(b *testing.B) { benchAlgorithm(b, sched.NewOIHSA()) }

// BenchmarkScheduleBBSA times BBSA on the same instance.
func BenchmarkScheduleBBSA(b *testing.B) { benchAlgorithm(b, sched.NewBBSA()) }

// BenchmarkScheduleClassic times the contention-free baseline.
func BenchmarkScheduleClassic(b *testing.B) { benchAlgorithm(b, sched.NewClassic()) }

// BenchmarkSchedulePackets times the packetized-message engine on the
// OIHSA stack.
func BenchmarkSchedulePackets(b *testing.B) {
	opts := sched.NewOIHSA().Opts
	opts.Engine = sched.EnginePackets
	opts.Insertion = sched.InsertionBasic
	opts.PacketSize = 100
	benchAlgorithm(b, sched.NewCustom("OIHSA/packets", opts))
}

// BenchmarkAblationPacketSize compares packetization policies (A10).
func BenchmarkAblationPacketSize(b *testing.B) { benchAblation(b, "packetsize") }

// BenchmarkAblationSwitching compares cut-through vs store-and-forward (A8).
func BenchmarkAblationSwitching(b *testing.B) { benchAblation(b, "switching") }

// BenchmarkAblationHopDelay sweeps the per-hop delay (A7).
func BenchmarkAblationHopDelay(b *testing.B) { benchAblation(b, "hopdelay") }

// BenchmarkAblationTaskPolicy compares append vs insertion tasks (A9).
func BenchmarkAblationTaskPolicy(b *testing.B) { benchAblation(b, "taskpolicy") }

// BenchmarkAblationPriority compares task priority schemes (A11).
func BenchmarkAblationPriority(b *testing.B) { benchAblation(b, "priority") }

// BenchmarkAblationDuplication measures source-task duplication (A12).
func BenchmarkAblationDuplication(b *testing.B) { benchAblation(b, "duplication") }

// --- serving engine benchmarks --------------------------------------

// engineFleet is the request wave size of the serving benchmarks: one
// benchmark op schedules all 64 DAGs, so ns/op is directly comparable
// between the engine and the cold sequential baseline.
const engineFleet = 64

// engineBenchWorld builds the shared serving workload: one 32-processor
// topology and 64 distinct medium DAGs.
func engineBenchWorld() (*network.Topology, []*dag.Graph) {
	net := benchInstance().Net
	gs := make([]*dag.Graph, engineFleet)
	for i := range gs {
		r := rand.New(rand.NewSource(int64(100 + i)))
		gs[i] = dag.RandomLayered(r, dag.RandomLayeredParams{
			Tasks:    100,
			TaskCost: dag.CostDist{Lo: 1, Hi: 50},
			EdgeCost: dag.CostDist{Lo: 1, Hi: 200},
		})
	}
	return net, gs
}

// BenchmarkEngineThroughput serves the 64-DAG wave concurrently from a
// warmed engine: shared route cache, pooled per-request states,
// GOMAXPROCS worker slots. Against BenchmarkEngineColdSequential this
// measures exactly what the engine amortizes — on any machine the
// steady-state allocations per request collapse (pooled columns, warm
// cache), and at GOMAXPROCS > 1 the wave additionally overlaps on the
// cores. Schedules are bit-identical to the cold runs throughout (see
// TestEngineMatchesColdRun).
func BenchmarkEngineThroughput(b *testing.B) {
	net, gs := engineBenchWorld()
	eng, err := sched.NewEngine(net, sched.EngineOptions{
		Name: "BA", Opts: sched.NewBA().Opts, WarmRoutes: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Drain()
	// One untimed wave fills the state pool and finishes cache warmup,
	// so the timed ops measure the steady state the engine exists for.
	runEngineWave(b, eng, gs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEngineWave(b, eng, gs)
	}
	b.StopTimer()
	st := eng.Stats()
	b.ReportMetric(100*st.CacheHitRate, "cache_hit_%")
}

func runEngineWave(b *testing.B, eng *sched.Engine, gs []*dag.Graph) {
	b.Helper()
	var wg sync.WaitGroup
	for _, g := range gs {
		wg.Add(1)
		go func(g *dag.Graph) {
			defer wg.Done()
			s, err := eng.Schedule(g)
			if err != nil {
				b.Error(err)
				return
			}
			if s.Makespan <= 0 {
				b.Error("empty makespan")
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkEngineColdSequential is the baseline the engine is measured
// against: the same 64-DAG wave scheduled by cold one-shot calls — a
// fresh state, fresh columns and a fresh route cache per request, one
// request at a time.
func BenchmarkEngineColdSequential(b *testing.B) {
	net, gs := engineBenchWorld()
	a := sched.NewBA()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range gs {
			s, err := a.Schedule(g, net)
			if err != nil {
				b.Fatal(err)
			}
			if s.Makespan <= 0 {
				b.Fatal("empty makespan")
			}
		}
	}
}

// --- substrate micro benchmarks -------------------------------------

// BenchmarkTimelineInsertBasic measures basic insertion on a loaded
// timeline.
// timelineReqs builds n placement requests spread over a time range
// that scales with n, so timelines reach n slots with realistic
// fragmentation at every sweep size.
func timelineReqs(n int) []linksched.Request {
	r := rand.New(rand.NewSource(1))
	span := float64(n) * 2
	reqs := make([]linksched.Request, n)
	for i := range reqs {
		es := r.Float64() * span
		reqs[i] = linksched.Request{ES: es, PF: es, Dur: r.Float64()*10 + 0.1}
	}
	return reqs
}

// timelineSweep is the slot-count sweep shared by the timeline
// benchmarks: two decades around the sizes the schedulers produce.
var timelineSweep = []int{100, 1000, 10000}

func BenchmarkTimelineInsertBasic(b *testing.B) {
	for _, n := range timelineSweep {
		reqs := timelineReqs(n)
		b.Run(fmt.Sprintf("slots=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tl := linksched.NewTimeline()
				for j, req := range reqs {
					tl.InsertBasic(linksched.Owner{Edge: j}, req)
				}
			}
		})
	}
}

// BenchmarkTimelineProbeBasic isolates the earliest-gap search: probes
// against a prebuilt timeline of n slots, no insertion memmove.
func BenchmarkTimelineProbeBasic(b *testing.B) {
	for _, n := range timelineSweep {
		reqs := timelineReqs(n)
		tl := linksched.NewTimeline()
		for j, req := range reqs {
			tl.InsertBasic(linksched.Owner{Edge: j}, req)
		}
		b.Run(fmt.Sprintf("slots=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				req := reqs[i%len(reqs)]
				start, _ := tl.ProbeBasic(req)
				if start < 0 {
					b.Fatal("negative start")
				}
			}
		})
	}
}

// BenchmarkTimelineInsertOptimal measures optimal insertion with a
// constant-slack oracle across the slot sweep.
func BenchmarkTimelineInsertOptimal(b *testing.B) {
	slack := func(linksched.Owner) float64 { return 5 }
	for _, n := range timelineSweep {
		reqs := timelineReqs(n)
		b.Run(fmt.Sprintf("slots=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tl := linksched.NewTimeline()
				for j, req := range reqs {
					tl.InsertOptimal(linksched.Owner{Edge: j}, req, slack)
				}
			}
		})
	}
}

// BenchmarkBandwidthAllocForward measures BBSA's chunk engine across a
// two-link route, sweeping the number of transfers sharing the links.
func BenchmarkBandwidthAllocForward(b *testing.B) {
	type job struct{ es, vol float64 }
	for _, n := range timelineSweep {
		r := rand.New(rand.NewSource(1))
		span := float64(n) * 2
		jobs := make([]job, n)
		for i := range jobs {
			jobs[i] = job{es: r.Float64() * span, vol: r.Float64()*50 + 1}
		}
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				up := linksched.NewBWTimeline()
				down := linksched.NewBWTimeline()
				for j, jb := range jobs {
					cs := up.Alloc(linksched.Owner{Edge: j, Leg: 0}, jb.es, jb.vol, 2, 0)
					down.Forward(linksched.Owner{Edge: j, Leg: 1}, cs, 2, 1, 0)
				}
			}
		})
	}
}

// BenchmarkBandwidthEstimateFinish isolates BBSA's routing probe: the
// modified-Dijkstra relax calls EstimateFinish against loaded ledgers
// without reserving anything. Each ledger is grown past n segments
// with a mix of saturating and partial-rate allocations, so the probe
// crosses both skippable saturated runs and fragmented availability.
func BenchmarkBandwidthEstimateFinish(b *testing.B) {
	for _, n := range timelineSweep {
		r := rand.New(rand.NewSource(1))
		span := float64(n) * 2
		bw := linksched.NewBWTimeline()
		for j := 0; bw.NumSegments() < n; j++ {
			cap := 0.0 // uncapped: saturates its span
			if j%2 == 0 {
				cap = 0.25 + r.Float64()*0.5
			}
			bw.Alloc(linksched.Owner{Edge: j}, r.Float64()*span, r.Float64()*50+1, 2, cap)
		}
		probes := make([]float64, 512)
		for i := range probes {
			probes[i] = r.Float64() * span
		}
		b.Run(fmt.Sprintf("segs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start, finish := bw.EstimateFinish(probes[i%len(probes)], 25, 2)
				if finish < start {
					b.Fatal("estimate finished before it started")
				}
			}
		})
	}
}

// BenchmarkBFSRoute measures minimal routing on a 64-processor WAN.
func BenchmarkBFSRoute(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	top := network.RandomCluster(r, network.RandomClusterParams{Processors: 64})
	ps := top.Processors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := ps[i%len(ps)]
		dst := ps[(i*7+3)%len(ps)]
		if _, err := top.BFSRoute(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDijkstraRoute measures modified-Dijkstra routing with an
// arithmetic relax on the same WAN.
func BenchmarkDijkstraRoute(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	top := network.RandomCluster(r, network.RandomClusterParams{Processors: 64})
	ps := top.Processors()
	relax := func(l network.Link, cur network.Label) network.Label {
		f := cur.Finish + 10/l.Speed
		return network.Label{Start: cur.Start, Finish: f}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := ps[i%len(ps)]
		dst := ps[(i*7+3)%len(ps)]
		if _, _, err := top.DijkstraRoute(src, dst, network.Label{}, relax); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGenerate measures §6 instance generation.
func BenchmarkWorkloadGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst := workload.Generate(workload.Params{
			Processors: 32, CCR: 2, MinTasks: 300, MaxTasks: 300, Seed: int64(i),
		})
		if inst.Graph.NumTasks() != 300 {
			b.Fatal("bad instance")
		}
	}
}

// BenchmarkBottomLevels measures priority computation on a large DAG.
func BenchmarkBottomLevels(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	g := dag.RandomLayered(r, dag.RandomLayeredParams{
		Tasks:    2000,
		TaskCost: dag.CostDist{Lo: 1, Hi: 1000},
		EdgeCost: dag.CostDist{Lo: 1, Hi: 1000},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BottomLevels(); err != nil {
			b.Fatal(err)
		}
	}
}
